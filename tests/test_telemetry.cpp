// cordon::telemetry — counters/gauges/histograms merging across worker
// slots, snapshot deltas, the trace ring (wraparound, JSON shape,
// disabled no-op), RoundSpan accounting, ExternalWorkerScope slot
// routing, and the service's Prometheus surface.
//
// Ships its own main(): CORDON_TRACE_EVENTS must be in the environment
// before the first trace-ring access (the capacity is latched once),
// and CORDON_TRACE must NOT be set (it would arm tracing globally and
// register an atexit flush the tests don't want).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dp_stats.hpp"
#include "src/core/telemetry.hpp"
#include "src/core/trace.hpp"
#include "src/engine/registry.hpp"
#include "src/parallel/scheduler.hpp"
#include "src/service/service.hpp"

namespace telemetry = cordon::telemetry;
namespace parallel = cordon::parallel;
namespace core = cordon::core;
namespace engine = cordon::engine;
namespace service = cordon::service;

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;

namespace {

/// Number of "X" events in a trace JSON string (crude but sufficient:
/// the writer never emits the substring elsewhere).
std::size_t count_phase(const std::string& json, const char* phase) {
  std::string needle = std::string("\"ph\":\"") + phase + "\"";
  std::size_t n = 0;
  for (std::size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + needle.size()))
    ++n;
  return n;
}

std::string dump_trace() {
  std::ostringstream os;
  telemetry::trace_write(os);
  return os.str();
}

}  // namespace

TEST(Telemetry, CountersMergeAcrossWorkers) {
  auto base = telemetry::snapshot();
  constexpr std::size_t kN = 4096;
  // Each iteration counts once; iterations land on whichever worker
  // slot steals them, so the total exercises the cross-slot fold.
  parallel::parallel_for(
      0, kN, [](std::size_t) { telemetry::count(Counter::kEngineSolves); }, 1);
  auto delta = telemetry::snapshot().delta_since(base);
  EXPECT_EQ(delta.counter(Counter::kEngineSolves), kN);
}

TEST(Telemetry, CounterSupportsBulkIncrements) {
  auto base = telemetry::snapshot();
  telemetry::count(Counter::kServiceCoalesced, 41);
  telemetry::count(Counter::kServiceCoalesced);
  auto delta = telemetry::snapshot().delta_since(base);
  EXPECT_EQ(delta.counter(Counter::kServiceCoalesced), 42u);
}

TEST(Telemetry, GaugeDeltasCancelAcrossThreads) {
  std::int64_t level = telemetry::snapshot().gauge(Gauge::kServiceQueueDepth);
  telemetry::gauge_add(Gauge::kServiceQueueDepth, +7);
  // The decrement lands on a different thread (hence a different slot);
  // only the summed level is meaningful, and it must come back exact.
  std::thread t([] { telemetry::gauge_add(Gauge::kServiceQueueDepth, -7); });
  t.join();
  EXPECT_EQ(telemetry::snapshot().gauge(Gauge::kServiceQueueDepth), level);
}

TEST(Telemetry, HistogramBucketsByBitWidth) {
  auto base = telemetry::snapshot();
  telemetry::observe(Histogram::kServiceSubmitNs, 0);     // bucket 0
  telemetry::observe(Histogram::kServiceSubmitNs, 1);     // bucket 1
  telemetry::observe(Histogram::kServiceSubmitNs, 7);     // bucket 3
  telemetry::observe(Histogram::kServiceSubmitNs, 8);     // bucket 4
  telemetry::observe(Histogram::kServiceSubmitNs, 1024);  // bucket 11
  auto delta = telemetry::snapshot().delta_since(base);
  const auto& h = delta.histogram(Histogram::kServiceSubmitNs);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[4], 1u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum, 0u + 1 + 7 + 8 + 1024);
}

TEST(Telemetry, HistogramClampsOversizedSamples) {
  auto base = telemetry::snapshot();
  telemetry::observe(Histogram::kServiceBatchSolveNs, ~std::uint64_t{0});
  auto delta = telemetry::snapshot().delta_since(base);
  const auto& h = delta.histogram(Histogram::kServiceBatchSolveNs);
  EXPECT_EQ(h.buckets[telemetry::kHistogramBuckets - 1], 1u);
}

TEST(Telemetry, HistogramMergesAcrossWorkers) {
  auto base = telemetry::snapshot();
  constexpr std::size_t kN = 512;
  parallel::parallel_for(
      0, kN,
      [](std::size_t i) {
        telemetry::observe(Histogram::kServiceQueueWaitNs, i % 16);
      },
      1);
  auto delta = telemetry::snapshot().delta_since(base);
  EXPECT_EQ(delta.histogram(Histogram::kServiceQueueWaitNs).count(), kN);
}

TEST(Telemetry, DeltaSubtractsCountersButKeepsGaugeLevels) {
  telemetry::gauge_add(Gauge::kSchedDequeJobs, +3);
  auto base = telemetry::snapshot();
  telemetry::count(Counter::kServiceBatches, 5);
  auto delta = telemetry::snapshot().delta_since(base);
  EXPECT_EQ(delta.counter(Counter::kServiceBatches), 5u);
  // Gauges are levels, not rates: delta carries the current level.
  EXPECT_EQ(delta.gauge(Gauge::kSchedDequeJobs),
            telemetry::snapshot().gauge(Gauge::kSchedDequeJobs));
  telemetry::gauge_add(Gauge::kSchedDequeJobs, -3);
}

TEST(Telemetry, ExternalWorkerScopeRoutesToWorkerSlot) {
  // An outsider thread writes to the shared overflow slot; once it
  // adopts a worker slot its writes go to that slot instead.  Observed
  // through slot_index(), the same routing count()/observe() use.
  std::size_t outside = 0, adopted = 0, after = 0;
  std::thread t([&] {
    outside = telemetry::detail::slot_index();
    {
      parallel::ExternalWorkerScope scope;
      adopted = telemetry::detail::slot_index();
    }
    after = telemetry::detail::slot_index();
  });
  t.join();
  EXPECT_EQ(outside, parallel::worker_slots());
  EXPECT_LT(adopted, parallel::worker_slots());
  EXPECT_GE(adopted, parallel::num_workers());
  EXPECT_EQ(after, parallel::worker_slots());
}

TEST(Trace, DisabledRecordingIsANoOp) {
  telemetry::set_trace_enabled(false);
  telemetry::trace_reset();
  {
    telemetry::TraceSpan span("should_not_appear", "test");
    EXPECT_FALSE(span.armed());
  }
  telemetry::trace_instant("nor_this", "test");
  std::string json = dump_trace();
  EXPECT_EQ(count_phase(json, "X"), 0u);
  EXPECT_EQ(count_phase(json, "i"), 0u);
  EXPECT_EQ(json.find("should_not_appear"), std::string::npos);
}

TEST(Trace, SpansAndInstantsRoundTripThroughJson) {
  telemetry::set_trace_enabled(true);
  telemetry::trace_reset();
  {
    telemetry::TraceSpan span("outer_span", "test");
    span.arg("alpha", 7).arg("beta", 9);
    telemetry::TraceSpan inner("inner_span", "test");
  }
  telemetry::trace_instant("tick", "test");
  telemetry::set_trace_enabled(false);
  std::string json = dump_trace();

  // Shape: one top-level traceEvents array, thread_name metadata rows
  // for every slot, and our three events with args attached.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_EQ(count_phase(json, "M"), parallel::worker_slots() + 1);
  EXPECT_EQ(count_phase(json, "X"), 2u);
  EXPECT_EQ(count_phase(json, "i"), 1u);
  EXPECT_NE(json.find("\"name\":\"outer_span\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"alpha\":7,\"beta\":9}"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy (names and
  // categories are static identifiers, so no string ever contains
  // brace characters).
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Trace, RingWrapsKeepingMostRecentEvents) {
  // main() pinned CORDON_TRACE_EVENTS=64 before the rings were built.
  constexpr std::size_t kRing = 64;
  telemetry::set_trace_enabled(true);
  telemetry::trace_reset();
  for (std::size_t i = 0; i < kRing * 3; ++i)
    telemetry::trace_instant(i < kRing * 2 ? "old_event" : "new_event",
                             "test");
  telemetry::set_trace_enabled(false);
  std::string json = dump_trace();
  // Exactly one ring's worth survives, and it is the newest third.
  EXPECT_EQ(count_phase(json, "i"), kRing);
  EXPECT_NE(json.find("new_event"), std::string::npos);
  EXPECT_EQ(json.find("old_event"), std::string::npos);
}

TEST(Trace, RoundSpanAccountsStatsDeltas) {
  core::DpStats stats;
  stats.states = 100;
  stats.relaxations = 1000;
  auto base = telemetry::snapshot();
  telemetry::set_trace_enabled(true);
  telemetry::trace_reset();
  {
    telemetry::RoundSpan span("test.round", stats);
    stats.states += 11;
    stats.relaxations += 222;
  }
  telemetry::set_trace_enabled(false);
  auto delta = telemetry::snapshot().delta_since(base);
  EXPECT_EQ(delta.counter(Counter::kSolverRounds), 1u);
  EXPECT_EQ(delta.counter(Counter::kSolverStates), 11u);
  EXPECT_EQ(delta.counter(Counter::kSolverRelaxations), 222u);
  EXPECT_EQ(delta.histogram(Histogram::kSolverRoundNs).count(), 1u);
  std::string json = dump_trace();
  EXPECT_NE(json.find("\"name\":\"test.round\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"states\":11,\"relaxations\":222}"),
            std::string::npos);
}

TEST(Trace, RoundSpanReadsAtomicStatsViaSnapshot) {
  core::AtomicDpStats stats;
  auto base = telemetry::snapshot();
  {
    telemetry::RoundSpan span("test.round", stats);
    stats.add_states(5);
    stats.add_relaxations(50);
  }
  auto delta = telemetry::snapshot().delta_since(base);
  EXPECT_EQ(delta.counter(Counter::kSolverRounds), 1u);
  EXPECT_EQ(delta.counter(Counter::kSolverStates), 5u);
  EXPECT_EQ(delta.counter(Counter::kSolverRelaxations), 50u);
  // Tracing was off: no span, no latency sample.
  EXPECT_EQ(delta.histogram(Histogram::kSolverRoundNs).count(), 0u);
}

TEST(Prometheus, WriterEmitsCumulativeBucketsAndTotals) {
  telemetry::Snapshot snap;
  snap.counters[static_cast<std::size_t>(Counter::kSchedSteals)] = 17;
  snap.gauges[static_cast<std::size_t>(Gauge::kServiceQueueDepth)] = -2;
  auto& h = snap.histograms[static_cast<std::size_t>(
      Histogram::kServiceSubmitNs)];
  h.buckets[1] = 3;  // 3 samples in [1, 2) ns
  h.buckets[4] = 1;  // 1 sample in [8, 16) ns
  h.sum = 3 * 1 + 12;
  std::ostringstream os;
  telemetry::write_prometheus(os, snap);
  std::string text = os.str();

  EXPECT_NE(text.find("# TYPE cordon_sched_steals_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("cordon_sched_steals_total 17"), std::string::npos);
  EXPECT_NE(text.find("cordon_service_queue_depth -2"), std::string::npos);
  // Buckets are cumulative and end at the last non-empty one, then +Inf.
  EXPECT_NE(text.find("cordon_service_submit_latency_seconds_bucket"
                      "{le=\"2e-09\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cordon_service_submit_latency_seconds_bucket"
                      "{le=\"1.6e-08\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("cordon_service_submit_latency_seconds_bucket"
                      "{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("cordon_service_submit_latency_seconds_count 4"),
            std::string::npos);
}

TEST(Service, MetricsTextExposesCacheAndLatency) {
  const auto& reg = engine::builtin_registry();
  const engine::Solver& lis = reg.at("lis");
  {
    service::CordonService svc({.max_batch = 4});
    auto inst = lis.generate({.n = 200, .k = 4, .seed = 9});
    svc.submit(inst).get();
    svc.submit(inst).get();  // same canonical instance: a cache hit
    std::string text = svc.metrics_text();

    EXPECT_NE(text.find("cordon_service_submitted_total 2"),
              std::string::npos);
    EXPECT_NE(text.find("cordon_service_cache_hits_total 1"),
              std::string::npos);
    EXPECT_NE(text.find("cordon_service_cache_hit_rate"), std::string::npos);
    EXPECT_NE(text.find("cordon_service_submit_latency_seconds_bucket"),
              std::string::npos);
    EXPECT_NE(text.find("cordon_solver_rounds_total"), std::string::npos);
    // Queue wait stats come from QueueStats::to_json_fields — the same
    // fields the stream operator prints.
    EXPECT_NE(text.find("cordon_service_queue_enqueued_total"),
              std::string::npos);
    svc.shutdown();
  }
}

int main(int argc, char** argv) {
  // Pin a tiny ring so the wraparound test is cheap, and make sure a
  // stray CORDON_TRACE in the environment can't arm tracing or register
  // an atexit flush.  Must happen before any trace-ring access.
  ::setenv("CORDON_TRACE_EVENTS", "64", 1);
  ::unsetenv("CORDON_TRACE");
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
