// Thread-sweep suite: the multi-core claim's correctness half.
//
// The scaling harness (scripts/run_benches.sh + check_scaling.py)
// proves the parallel paths get FASTER with workers; this suite proves
// they never get WRONG: every registered family, solved at pool sizes
// {1, 2, 4, 8}, matches the naive reference oracle; repeated parallel
// solves are deterministic; and the adaptive sequential cutoff
// (src/core/cutoff.hpp) and round fusion route instances between paths
// without changing a single answer.
//
// Ships its own main() (OWN_MAIN): it restarts the scheduler pool
// between cases (detail::shutdown_pool + set_num_workers) and flips
// CORDON_* routing knobs with setenv — both process-global, so this
// binary must own its scheduler lifecycle end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cutoff.hpp"
#include "src/core/telemetry.hpp"
#include "src/engine/registry.hpp"
#include "src/glws/costs.hpp"
#include "src/glws/glws.hpp"
#include "src/parallel/random.hpp"
#include "src/parallel/scheduler.hpp"

namespace cp = cordon::parallel;
namespace core = cordon::core;
namespace engine = cordon::engine;
namespace telemetry = cordon::telemetry;

namespace {

// Tears down the live pool and brings up a fresh one with exactly
// `workers` workers.  max_workers() >= 8 by contract, so every size in
// the sweep grid is representable without clamping.
void restart_pool(std::size_t workers) {
  cp::detail::shutdown_pool();
  ASSERT_TRUE(cp::set_num_workers(workers));
  cp::ensure_started();
  ASSERT_EQ(cp::num_workers(), workers);
}

// setenv with restore-on-destruction, so a failing assertion can't leak
// a routing override into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_ = false;
};

// Forces the parallel algorithm regardless of pool size or instance
// size, so the sweep exercises the real parallel code paths even where
// production routing would (correctly) choose the sequential algorithm.
struct ForceParallel {
  ScopedEnv glws_c{"CORDON_GLWS_CUTOFF", "0"};
  ScopedEnv lcs_c{"CORDON_LCS_CUTOFF", "0"};
  ScopedEnv gap_c{"CORDON_GAP_CUTOFF", "0"};
  ScopedEnv tree_c{"CORDON_TREEGLWS_CUTOFF", "0"};
  ScopedEnv glws_w{"CORDON_GLWS_MIN_WORKERS", "1"};
  ScopedEnv lcs_w{"CORDON_LCS_MIN_WORKERS", "1"};
  ScopedEnv gap_w{"CORDON_GAP_MIN_WORKERS", "1"};
  ScopedEnv tree_w{"CORDON_TREEGLWS_MIN_WORKERS", "1"};
};

}  // namespace

TEST(ThreadSweep, AllFamiliesMatchReferenceAtEveryPoolSize) {
  ForceParallel force;
  const auto& reg = engine::builtin_registry();
  ASSERT_EQ(reg.size(), 9u);
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    restart_pool(workers);
    for (const auto& solver : reg.solvers()) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        std::uint64_t n = 80 + 90 * seed + 13 * workers;
        engine::Instance inst = solver->generate({n, 5, seed * 77 + workers});
        engine::SolveResult fast = solver->solve(inst);
        engine::SolveResult ref = solver->solve_reference(inst);
        double tol = 1e-9 * (1.0 + std::abs(ref.objective));
        EXPECT_NEAR(fast.objective, ref.objective, tol)
            << solver->key() << " workers=" << workers << " seed=" << seed;
        EXPECT_EQ(fast.path, core::SolvePath::kParallel)
            << solver->key() << ": ForceParallel must defeat routing";
      }
    }
  }
}

TEST(ThreadSweep, RepeatedParallelSolvesAreDeterministic) {
  ForceParallel force;
  restart_pool(8);
  const auto& reg = engine::builtin_registry();
  for (const auto& solver : reg.solvers()) {
    engine::Instance inst = solver->generate({257, 6, 99});
    engine::SolveResult first = solver->solve(inst);
    for (int rep = 0; rep < 3; ++rep) {
      engine::SolveResult again = solver->solve(inst);
      // Exact equality: scheduling order must not leak into answers
      // (atomic min-CAS relaxation is order-independent by design).
      EXPECT_EQ(first.objective, again.objective)
          << solver->key() << " rep=" << rep;
    }
  }
}

TEST(ThreadSweep, CutoffRoutesByInstanceSizeWithIdenticalAnswers) {
  restart_pool(8);
  const auto& reg = engine::builtin_registry();
  // The four families with an adaptive size cutoff; lis/oat/obst/kglws/
  // dag have no *_auto routing.
  for (const char* key : {"glws", "lcs", "gap", "treeglws"}) {
    const engine::Solver& solver = reg.at(key);
    engine::Instance inst = solver.generate({300, 5, 11});
    engine::SolveResult seq_routed, par_routed;
    {
      // Huge threshold: every instance is "small", sequential path.
      ScopedEnv glws{"CORDON_GLWS_CUTOFF", "1000000000"};
      ScopedEnv lcs{"CORDON_LCS_CUTOFF", "1000000000"};
      ScopedEnv gap{"CORDON_GAP_CUTOFF", "1000000000"};
      ScopedEnv tree{"CORDON_TREEGLWS_CUTOFF", "1000000000"};
      auto base = telemetry::snapshot();
      seq_routed = solver.solve(inst);
      EXPECT_EQ(seq_routed.path, core::SolvePath::kSequentialCutoff) << key;
      // The routing decision is visible in telemetry, not just the
      // result struct.
      EXPECT_GE(telemetry::snapshot().delta_since(base).counter(
                    telemetry::Counter::kSolverSeqCutoffs),
                1u)
          << key;
    }
    {
      ForceParallel force;
      par_routed = solver.solve(inst);
      EXPECT_EQ(par_routed.path, core::SolvePath::kParallel) << key;
    }
    double tol = 1e-9 * (1.0 + std::abs(seq_routed.objective));
    EXPECT_NEAR(seq_routed.objective, par_routed.objective, tol)
        << key << ": both routes must agree";
    engine::SolveResult ref = solver.solve_reference(inst);
    EXPECT_NEAR(seq_routed.objective, ref.objective,
                1e-9 * (1.0 + std::abs(ref.objective)))
        << key;
  }
}

TEST(ThreadSweep, CutoffStraddleBothSidesOfThreshold) {
  restart_pool(8);
  const auto& reg = engine::builtin_registry();
  const engine::Solver& solver = reg.at("glws");
  // Pin the glws threshold between the two instance sizes: n=128 must
  // route sequentially, n=512 must go parallel, and the answers on both
  // sides must match the oracle.
  ScopedEnv cutoff{"CORDON_GLWS_CUTOFF", "256"};
  ScopedEnv min_workers{"CORDON_GLWS_MIN_WORKERS", "1"};
  struct Case {
    std::uint64_t n;
    core::SolvePath want;
  } cases[] = {{128, core::SolvePath::kSequentialCutoff},
               {512, core::SolvePath::kParallel}};
  for (const Case& c : cases) {
    engine::Instance inst = solver.generate({c.n, 5, 23});
    engine::SolveResult fast = solver.solve(inst);
    EXPECT_EQ(fast.path, c.want) << "n=" << c.n;
    engine::SolveResult ref = solver.solve_reference(inst);
    EXPECT_NEAR(fast.objective, ref.objective,
                1e-9 * (1.0 + std::abs(ref.objective)))
        << "n=" << c.n;
  }
}

TEST(ThreadSweep, RoundFusionDoesNotChangeAnswers) {
  ForceParallel force;
  restart_pool(8);

  // glws's engine generator emits single-round instances (the whole
  // envelope resolves in one cordon), so drive the high-round/low-work
  // regime fusion targets directly: a cheap post-office opening cost
  // forces a long best-decision chain, i.e. many light rounds.
  {
    namespace glws = cordon::glws;
    const std::size_t n = 3000;
    auto x = std::make_shared<std::vector<double>>(n + 1, 0.0);
    for (std::size_t i = 1; i <= n; ++i)
      (*x)[i] = (*x)[i - 1] + 0.5 + cp::uniform_double(7, i);
    glws::CostFn w = glws::post_office_cost(x, 20.0);
    glws::EFn e = glws::identity_e();
    glws::GlwsResult fused, unfused;
    {
      ScopedEnv fuse{"CORDON_FUSE_RELAX", "0"};  // fusion off
      unfused = glws::glws_parallel(n, 0.0, w, e, glws::Shape::kConvex);
    }
    ASSERT_GT(unfused.stats.rounds, 1u) << "need a multi-round instance";
    {
      ScopedEnv fuse{"CORDON_FUSE_RELAX", "1000000000"};
      auto base = telemetry::snapshot();
      fused = glws::glws_parallel(n, 0.0, w, e, glws::Shape::kConvex);
      EXPECT_GE(telemetry::snapshot().delta_since(base).counter(
                    telemetry::Counter::kSolverFusedRounds),
                1u);
    }
    EXPECT_NEAR(fused.d[n], unfused.d[n],
                1e-9 * (1.0 + std::abs(unfused.d[n])));
  }

  const auto& reg = engine::builtin_registry();
  for (const char* key : {"lcs", "gap"}) {
    const engine::Solver& solver = reg.at(key);
    engine::Instance inst = solver.generate({400, 7, 31});
    engine::SolveResult fused, unfused;
    {
      ScopedEnv fuse{"CORDON_FUSE_RELAX", "0"};  // fusion off
      unfused = solver.solve(inst);
    }
    {
      // Threshold above any round's relaxation count: every round after
      // the first runs inline.  Same answers, counter visibly bumped.
      ScopedEnv fuse{"CORDON_FUSE_RELAX", "1000000000"};
      auto base = telemetry::snapshot();
      fused = solver.solve(inst);
      EXPECT_GE(telemetry::snapshot().delta_since(base).counter(
                    telemetry::Counter::kSolverFusedRounds),
                1u)
          << key;
    }
    EXPECT_EQ(fused.path, core::SolvePath::kParallel) << key;
    double tol = 1e-9 * (1.0 + std::abs(unfused.objective));
    EXPECT_NEAR(fused.objective, unfused.objective, tol) << key;
  }
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int rc = RUN_ALL_TESTS();
  // Leave no pool behind: workers joined before static teardown.
  cordon::parallel::detail::shutdown_pool();
  return rc;
}
