// Tree-GLWS: naive ancestor-scan vs journaled DFS vs parallel cordon on
// assorted tree shapes (random, path, star, caterpillar).
#include <gtest/gtest.h>

#include <vector>

#include "src/structures/tree_utils.hpp"
#include "src/treeglws/tree_glws.hpp"
#include "test_util.hpp"

using namespace cordon::treeglws;
using cordon::structures::RootedTree;
namespace ct = cordon::testing;

namespace {

void expect_same(const TreeGlwsResult& a, const TreeGlwsResult& b,
                 double tol = 1e-7) {
  ASSERT_EQ(a.d.size(), b.d.size());
  for (std::size_t v = 0; v < a.d.size(); ++v)
    ASSERT_NEAR(a.d[v], b.d[v], tol) << "node " << v;
}

cordon::glws::CostFn depth_convex_cost(std::size_t max_depth,
                                       std::uint64_t seed) {
  // w(d_u, d_v) over depths; convex in the depth difference.
  auto x = ct::random_positions(max_depth + 1, seed);
  return [x](std::size_t du, std::size_t dv) {
    double s = (*x)[dv] - (*x)[du];
    return 20.0 + 0.1 * s * s;
  };
}

}  // namespace

struct TreeCase {
  std::size_t n;
  std::uint64_t seed;
};

class TreeGlwsRandomSweep : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreeGlwsRandomSweep, NaiveSeqParallelAgree) {
  auto [n, seed] = GetParam();
  RootedTree t(ct::random_tree_parents(n, seed));
  auto w = depth_convex_cost(n, seed ^ 0x77);
  auto e = cordon::glws::identity_e();
  auto nv = tree_glws_naive(t, 0.0, w, e);
  auto sv = tree_glws_sequential(t, 0.0, w, e);
  auto pv = tree_glws_parallel(t, 0.0, w, e);
  expect_same(nv, sv);
  expect_same(nv, pv);
}

INSTANTIATE_TEST_SUITE_P(Cases, TreeGlwsRandomSweep,
                         ::testing::Values(TreeCase{1, 1}, TreeCase{2, 2},
                                           TreeCase{3, 3}, TreeCase{10, 4},
                                           TreeCase{50, 5}, TreeCase{200, 6},
                                           TreeCase{500, 7}, TreeCase{1000, 8},
                                           TreeCase{2000, 9}));

TEST(TreeGlws, PathTreeEqualsLinearGlws) {
  // A path tree is exactly the 1D problem: compare against the 1D
  // parallel GLWS on the same cost.
  const std::size_t n = 300;
  RootedTree t(ct::path_tree_parents(n + 1));  // n+1 nodes: depths 0..n
  auto w = depth_convex_cost(n + 1, 13);
  auto e = cordon::glws::identity_e();
  auto tv = tree_glws_parallel(t, 0.0, w, e);
  auto lv = cordon::glws::glws_parallel(n, 0.0, w, e,
                                        cordon::glws::Shape::kConvex);
  for (std::size_t v = 0; v <= n; ++v)
    ASSERT_NEAR(tv.d[v], lv.d[v], 1e-7) << v;  // node v has depth v
}

TEST(TreeGlws, StarFinishesInOneRound) {
  const std::size_t n = 100;
  std::vector<std::uint32_t> parents(n, 0);
  parents[0] = cordon::structures::kNoNode;
  RootedTree t(parents);
  auto w = depth_convex_cost(4, 17);
  auto pv = tree_glws_parallel(t, 0.0, w, cordon::glws::identity_e());
  EXPECT_EQ(pv.stats.rounds, 1u);  // all leaves depend only on the root
  for (std::size_t v = 1; v < n; ++v) ASSERT_NEAR(pv.d[v], pv.d[1], 1e-12);
}

TEST(TreeGlws, CaterpillarAgrees) {
  const std::size_t n = 401;
  RootedTree t(ct::caterpillar_parents(n));
  auto w = depth_convex_cost(n, 29);
  auto e = cordon::glws::identity_e();
  auto nv = tree_glws_naive(t, 0.0, w, e);
  auto pv = tree_glws_parallel(t, 0.0, w, e);
  expect_same(nv, pv);
}

TEST(TreeGlws, SiblingsShareDpValues) {
  RootedTree t(ct::random_tree_parents(300, 31));
  auto w = depth_convex_cost(300, 37);
  auto pv = tree_glws_parallel(t, 0.0, w, cordon::glws::identity_e());
  for (std::uint32_t v = 0; v < t.size(); ++v)
    for (std::size_t c = 1; c < t.children[v].size(); ++c)
      ASSERT_NEAR(pv.d[t.children[v][c]], pv.d[t.children[v][0]], 1e-12);
}

TEST(TreeGlws, GeneralizedEDependsOnNode) {
  // E[u] = D[u] + per-node bias: siblings still share D but not E.
  RootedTree t(ct::random_tree_parents(200, 41));
  auto w = depth_convex_cost(200, 43);
  cordon::glws::EFn e = [](double d, std::size_t u) {
    return d + static_cast<double>(u % 7) * 0.25;
  };
  auto nv = tree_glws_naive(t, 0.0, w, e);
  auto sv = tree_glws_sequential(t, 0.0, w, e);
  auto pv = tree_glws_parallel(t, 0.0, w, e);
  expect_same(nv, sv);
  expect_same(nv, pv);
}

TEST(TreeGlws, PathRoundsMatchLinearGlwsRounds) {
  // On a path the tree algorithm must not only compute 1D values but
  // take the same number of cordon rounds as the 1D algorithm (same
  // sentinel structure).
  const std::size_t n = 400;
  RootedTree t(ct::path_tree_parents(n + 1));
  auto w = depth_convex_cost(n + 1, 61);
  auto e = cordon::glws::identity_e();
  auto tv = tree_glws_parallel(t, 0.0, w, e);
  auto lv = cordon::glws::glws_parallel(n, 0.0, w, e,
                                        cordon::glws::Shape::kConvex);
  EXPECT_EQ(tv.stats.rounds, lv.stats.rounds);
}

TEST(TreeGlws, RoundsBoundedByEnvelopeChainOnPath) {
  // With a huge opening cost the best decision chain is short; rounds
  // should be far below the path length.
  const std::size_t n = 500;
  RootedTree t(ct::path_tree_parents(n));
  auto x = ct::random_positions(n, 51);
  cordon::glws::CostFn w = [x](std::size_t du, std::size_t dv) {
    double s = (*x)[dv] - (*x)[du];
    return 1e6 + s * s;  // few clusters => shallow decision DAG
  };
  auto pv = tree_glws_parallel(t, 0.0, w, cordon::glws::identity_e());
  EXPECT_LT(pv.stats.rounds, 60u);
}
