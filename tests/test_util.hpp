// Shared helpers for the test suite: seeded random inputs, the cost
// families used across GLWS / GAP / Tree-GLWS tests, and the objective
// comparison tolerance used by the engine/service oracle checks.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/glws/glws.hpp"
#include "src/parallel/random.hpp"

namespace cordon::testing {

/// Objectives are doubles accumulated in different orders by the
/// optimized and oracle algorithms: compare with a relative tolerance.
inline void expect_objective_near(double got, double want,
                                  const std::string& what) {
  double tol = 1e-6 * std::max(1.0, std::abs(want));
  EXPECT_NEAR(got, want, tol) << what;
}

inline std::vector<std::uint64_t> random_values(std::size_t n,
                                                std::uint64_t seed,
                                                std::uint64_t bound) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = parallel::uniform(seed, i, bound);
  return v;
}

/// Sorted positions x[0..n] (x[0] = 0) with random gaps — the "villages"
/// of the post-office family.
inline std::shared_ptr<std::vector<double>> random_positions(
    std::size_t n, std::uint64_t seed) {
  auto x = std::make_shared<std::vector<double>>(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i)
    (*x)[i] = (*x)[i - 1] + 1.0 + parallel::uniform_double(seed, i) * 9.0;
  return x;
}

/// Convex Monge family: quadratic in the span plus arbitrary separable
/// row/column terms (separable terms cancel in the quadrangle
/// inequality, so convexity is preserved while making the instance
/// non-trivial).
inline glws::CostFn random_convex_cost(std::size_t n, std::uint64_t seed,
                                       double open_cost = 25.0) {
  auto x = random_positions(n, seed);
  auto rowterm = std::make_shared<std::vector<double>>(n + 1);
  auto colterm = std::make_shared<std::vector<double>>(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    (*rowterm)[i] = parallel::uniform_double(seed ^ 0xabc, i) * 3.0;
    (*colterm)[i] = parallel::uniform_double(seed ^ 0xdef, i) * 3.0;
  }
  return [x, rowterm, colterm, open_cost](std::size_t j, std::size_t i) {
    double span = (*x)[i] - (*x)[j];
    return open_cost + 0.05 * span * span + (*rowterm)[j] + (*colterm)[i];
  };
}

/// Concave Monge family: sqrt of the span plus separable terms.
inline glws::CostFn random_concave_cost(std::size_t n, std::uint64_t seed,
                                        double open_cost = 3.0) {
  auto x = random_positions(n, seed);
  auto rowterm = std::make_shared<std::vector<double>>(n + 1);
  auto colterm = std::make_shared<std::vector<double>>(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    (*rowterm)[i] = parallel::uniform_double(seed ^ 0x123, i) * 0.5;
    (*colterm)[i] = parallel::uniform_double(seed ^ 0x456, i) * 0.5;
  }
  return [x, rowterm, colterm, open_cost](std::size_t j, std::size_t i) {
    double span = (*x)[i] - (*x)[j];
    double s = span < 0 ? 0.0 : span;
    return open_cost + std::sqrt(s) + (*rowterm)[j] + (*colterm)[i];
  };
}

/// A random parent array for a rooted tree: parent[v] uniform in [0, v).
inline std::vector<std::uint32_t> random_tree_parents(std::size_t n,
                                                      std::uint64_t seed) {
  std::vector<std::uint32_t> parent(n, 0xffffffffu);
  for (std::uint32_t v = 1; v < n; ++v)
    parent[v] = static_cast<std::uint32_t>(parallel::uniform(seed, v, v));
  return parent;
}

/// A path graph (worst depth), rooted at 0.
inline std::vector<std::uint32_t> path_tree_parents(std::size_t n) {
  std::vector<std::uint32_t> parent(n, 0xffffffffu);
  for (std::uint32_t v = 1; v < n; ++v) parent[v] = v - 1;
  return parent;
}

/// A caterpillar: a spine with one leaf per spine node.
inline std::vector<std::uint32_t> caterpillar_parents(std::size_t n) {
  std::vector<std::uint32_t> parent(n, 0xffffffffu);
  for (std::uint32_t v = 1; v < n; ++v)
    parent[v] = v % 2 == 0 ? v - 2 : v - 1;
  if (n > 1) parent[1] = 0;
  if (n > 2) parent[2] = 0;
  return parent;
}

}  // namespace cordon::testing
