// Emits the checked-in seed corpus for the wire-format fuzzers
// (fuzz/fuzz_instance_parse.cpp, fuzz/fuzz_delta_apply.cpp); run via
// scripts/make_corpus.sh, which also adds the hand-written hostile
// seeds.
//
//   cordon_corpus_gen <outdir>
//
// writes <outdir>/instance/<kind>.inst — one canonical instance per
// registered family — and two delta seeds per appendable family:
// <outdir>/delta/<kind>.delta (bare delta text, exercised against the
// fuzzer's fixed base) and <outdir>/delta/<kind>_pair.bin (the fuzzer's
// `<base> NUL <delta>` framing, so the apply path of every family is
// covered from the very first replay).  Sizes are tiny on purpose:
// seeds exist to reach parser states, not to be workloads.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/engine/delta.hpp"
#include "src/engine/instance.hpp"
#include "src/engine/registry.hpp"
#include "src/engine/solver.hpp"

namespace fs = std::filesystem;
using namespace cordon;

namespace {

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "corpus_gen: failed to write %s\n",
                 path.string().c_str());
    std::exit(1);
  }
}

/// dag has no prefix/slice (deltas carry explicit states/edges), so its
/// append seed is built by hand: two fresh states wired to the old tail.
engine::Delta dag_delta(const engine::Instance& full) {
  const auto& d = std::get<engine::DagInstance>(full.payload);
  auto old_n = static_cast<std::uint32_t>(d.n);
  engine::DagInstance append;
  append.n = 2;
  append.objective = d.objective;
  append.boundary = {{old_n, 0.0}};
  append.edges = {{old_n - 1, old_n, 1.0, true},
                  {old_n, old_n + 1, 2.0, true}};
  return {full.kind, /*base_version=*/0, std::move(append)};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: cordon_corpus_gen <outdir>\n");
    return 2;
  }
  const fs::path out(argv[1]);
  fs::create_directories(out / "instance");
  fs::create_directories(out / "delta");

  const engine::GenOptions opt{/*n=*/40, /*k=*/3, /*seed=*/7};
  int files = 0;
  for (const auto& solver : engine::builtin_registry().solvers()) {
    const std::string kind(solver->key());
    const engine::Instance full = solver->generate(opt);
    write_file(out / "instance" / (kind + ".inst"), engine::to_string(full));
    ++files;

    engine::Instance base;
    engine::Delta delta;
    if (kind == "dag") {
      base = full;
      delta = dag_delta(full);
    } else {
      base = engine::prefix_instance(full, 24);
      delta = engine::slice_delta(full, 24, 40, /*base_version=*/0);
    }
    const std::string delta_text = engine::to_string(delta);
    write_file(out / "delta" / (kind + ".delta"), delta_text);
    write_file(out / "delta" / (kind + "_pair.bin"),
               engine::to_string(base) + '\0' + delta_text);
    files += 2;
  }
  std::printf("corpus_gen: wrote %d seed(s) under %s\n", files,
              out.string().c_str());
  return 0;
}
